// Command lep reproduces Table 1 of the paper: strategy-generation time
// and memory for the Leader Election Protocol with n = 3..8 nodes and the
// three test purposes TP1, TP2 and TP3, with "/" marking cells whose
// resource budget was exhausted (the paper's out-of-memory marker).
//
// Usage:
//
//	lep -table1                  # the full grid (budgeted; takes a while)
//	lep -table1 -max 5           # stop at n=5
//	lep -n 4 -tp TP2             # a single cell, verbose
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"tigatest/internal/game"
	"tigatest/internal/models"
	"tigatest/internal/tctl"
)

var tps = []struct {
	name string
	src  string
}{
	{"TP1", models.LEPTP1},
	{"TP2", models.LEPTP2},
	{"TP3", models.LEPTP3},
}

func main() {
	var (
		table1      = flag.Bool("table1", false, "reproduce the paper's Table 1")
		minN        = flag.Int("min", 3, "smallest n")
		maxN        = flag.Int("max", 8, "largest n")
		n           = flag.Int("n", 3, "single-cell mode: number of nodes")
		tp          = flag.String("tp", "TP1", "single-cell mode: TP1|TP2|TP3")
		budget      = flag.Duration("budget", 120*time.Second, "per-cell time budget")
		memMB       = flag.Uint64("mem", 2048, "per-cell memory budget (MiB)")
		workers     = flag.Int("workers", 0, "parallel exploration workers (0 = all cores, 1 = serial)")
		propWorkers = flag.Int("prop-workers", 0, "parallel propagation workers (0 = same as -workers)")
	)
	flag.Parse()

	if *table1 {
		printTable1(*minN, *maxN, *budget, *memMB<<20, *workers, *propWorkers)
		return
	}
	src := ""
	for _, t := range tps {
		if t.name == *tp {
			src = t.src
		}
	}
	if src == "" {
		fmt.Fprintf(os.Stderr, "lep: unknown test purpose %q\n", *tp)
		os.Exit(1)
	}
	cell := solveCell(*n, src, *budget, *memMB<<20, *workers, *propWorkers)
	fmt.Printf("n=%d %s: %s\n", *n, *tp, cell.verbose())
}

type cellResult struct {
	ok       bool
	winnable bool
	dur      time.Duration
	heap     uint64
	nodes    int
	err      error
}

func (c cellResult) String() string {
	if !c.ok {
		return "/"
	}
	return fmt.Sprintf("%.2f", c.dur.Seconds())
}

func (c cellResult) mem() string {
	if !c.ok {
		return "/"
	}
	return fmt.Sprintf("%d", c.heap>>20)
}

func (c cellResult) verbose() string {
	if !c.ok {
		return fmt.Sprintf("/ (budget exhausted: %v)", c.err)
	}
	return fmt.Sprintf("winnable=%v time=%v heap=%dMiB states=%d", c.winnable, c.dur.Round(time.Millisecond), c.heap>>20, c.nodes)
}

func solveCell(n int, src string, budget time.Duration, memBudget uint64, workers, propWorkers int) cellResult {
	// Isolate heap accounting per cell.
	runtime.GC()
	debug.FreeOSMemory()
	sys := models.LEP(models.LEPOptions{Nodes: n})
	f, err := tctl.Parse(models.LEPEnv(sys, n), src)
	if err != nil {
		return cellResult{err: err}
	}
	res, err := game.Solve(sys, f, game.Options{
		EarlyTermination:   true,
		TimeBudget:         budget,
		MemBudget:          memBudget,
		Workers:            workers,
		PropagationWorkers: propWorkers,
	})
	if err != nil {
		return cellResult{err: err}
	}
	return cellResult{
		ok:       true,
		winnable: res.Winnable,
		dur:      res.Stats.Duration,
		heap:     res.Stats.PeakHeapBytes,
		nodes:    res.Stats.Nodes,
	}
}

func printTable1(minN, maxN int, budget time.Duration, memBudget uint64, workers, propWorkers int) {
	fmt.Println("Table 1 reproduction: strategy generation for the LEP protocol")
	fmt.Printf("(per-cell budget: %v / %d MiB; '/' = budget exhausted, the paper's out-of-memory)\n\n", budget, memBudget>>20)

	type row struct {
		name  string
		cells []cellResult
	}
	var rows []row
	for _, t := range tps {
		r := row{name: t.name}
		for n := minN; n <= maxN; n++ {
			cell := solveCell(n, t.src, budget, memBudget, workers, propWorkers)
			r.cells = append(r.cells, cell)
			fmt.Fprintf(os.Stderr, "  solved %s n=%d: %s\n", t.name, n, cell.verbose())
		}
		rows = append(rows, r)
	}

	print := func(title string, f func(cellResult) string) {
		fmt.Printf("\n%s\n", title)
		fmt.Printf("%-5s", "")
		for n := minN; n <= maxN; n++ {
			fmt.Printf("%10s", fmt.Sprintf("n=%d", n))
		}
		fmt.Println()
		for _, r := range rows {
			fmt.Printf("%-5s", r.name)
			for _, c := range r.cells {
				fmt.Printf("%10s", f(c))
			}
			fmt.Println()
		}
	}
	print("Time (s)", func(c cellResult) string { return c.String() })
	print("Memory (MB)", func(c cellResult) string { return c.mem() })

	fmt.Println("\nPaper's Table 1 (dual-core 2.4GHz, 4GB, UPPAAL-TIGA, 2008) for comparison:")
	fmt.Println("Time (s)        n=3     n=4     n=5     n=6     n=7     n=8")
	fmt.Println("TP1            0.03    0.14     0.7     3.1    11.1    33.5")
	fmt.Println("TP2            0.81    2.13     8.4    67.1   452.0       /")
	fmt.Println("TP3            0.89    2.79    25.9    73.2   453.8       /")
	fmt.Println("Memory (MB)     n=3     n=4     n=5     n=6     n=7     n=8")
	fmt.Println("TP1             0.1       4       9      28      85     242")
	fmt.Println("TP2            11.2      33      88     462    2977       /")
	fmt.Println("TP3            11.9      40     289     578    3015       /")
}
