// Command testexec runs strategy-based conformance tests (Algorithm 3.1)
// against simulated implementations, including the fault-detection
// campaign of the paper's future-work item 3.
//
// Usage:
//
//	testexec -model smartlight                     # one conformant run
//	testexec -model smartlight -campaign           # mutation campaign
//	testexec -model smartlight -serve :9000        # host an IUT over TCP
//	testexec -model smartlight -connect host:9000  # test a remote IUT
//	testexec -file m.tga -formula "control: A<> P.Goal" -plant P
//
// Models come from the built-in library (-model smartlight) or any file in
// the tigatest DSL (-file, like cmd/tiga). The plant — the processes that
// play the implementation under test — defaults to the model's convention
// (smartlight: the IUT process) or, for -file models, to every process
// that emits outputs or receives inputs; -plant overrides it with an
// explicit comma-separated process list.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tigatest/internal/adapter"
	"tigatest/internal/campaign"
	"tigatest/internal/dsl"
	"tigatest/internal/game"
	"tigatest/internal/model"
	"tigatest/internal/models"
	"tigatest/internal/mutate"
	"tigatest/internal/tctl"
	"tigatest/internal/texec"
	"tigatest/internal/tiots"
)

func main() {
	var (
		modelName   = flag.String("model", "", "built-in model: smartlight (default when -file is absent)")
		file        = flag.String("file", "", "model file in the tigatest DSL")
		formula     = flag.String("formula", "", "test purpose (default: the built-in model's standard purpose)")
		plantList   = flag.String("plant", "", "comma-separated plant process names (default: model convention / output emitters)")
		runCampaign = flag.Bool("campaign", false, "run the mutation fault-detection campaign")
		perOp       = flag.Int("perop", 0, "mutants per operator in the campaign (0 = all)")
		serve       = flag.String("serve", "", "serve a conformant IUT on this address instead of testing")
		connect     = flag.String("connect", "", "test an IUT served at this address")
		workers     = flag.Int("workers", 0, "parallel synthesis workers (0 = all cores, 1 = serial)")
		propWorkers = flag.Int("prop-workers", 0, "parallel propagation workers (0 = same as -workers)")
	)
	flag.Parse()

	f, src, err := loadSpec(*modelName, *file, *formula)
	if err != nil {
		fatal(err)
	}
	spec := f.Sys
	// The built-in plant convention applies only when the model IS the
	// built-in one (-file absent) — a user file merely named "smartlight"
	// must get the generic default, not a hardwired process index.
	plant, err := resolvePlant(spec, *file == "", *plantList)
	if err != nil {
		fatal(err)
	}

	if *serve != "" {
		// Factory mode: every connecting driver gets its own isolated IUT
		// instance, so parallel campaign cells can share this host.
		srv, err := adapter.ServeFactory(*serve, func() tiots.IUT {
			return tiots.NewDetIUT(model.ExtractPlant(spec, plant, "Stub"), tiots.Scale, nil)
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving conformant %s implementations on %s (ctrl-c to stop)\n", spec.Name, srv.Addr())
		select {}
	}

	purpose, err := tctl.Parse(f.ParseEnv(), src)
	if err != nil {
		fatal(err)
	}
	// Shared synthesis path (campaign cell runner): strict game first,
	// cooperative fallback per the paper's Section 3.2 ordering.
	res, err := campaign.Synthesize(spec, purpose, game.Options{Workers: *workers, PropagationWorkers: *propWorkers})
	if err != nil {
		fatal(err)
	}
	if !res.Winnable {
		fatal(fmt.Errorf("test purpose %s is not winnable, even cooperatively; no strategy to execute", src))
	}
	mode := "winning"
	if res.Strategy.Cooperative() {
		mode = "cooperative"
	}
	fmt.Printf("synthesized %s strategy for %s (%d symbolic states)\n\n", mode, purpose, res.Strategy.NumNodes())

	runner := &campaign.Runner{Strategy: res.Strategy, Exec: texec.Options{PlantProcs: plant}}

	if *connect != "" {
		cli, err := adapter.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		defer cli.Close()
		r := runner.RunOnce(cli)
		fmt.Printf("remote IUT at %s: %s\n", *connect, r)
		exitOn(r)
		return
	}

	if !*runCampaign {
		impl := model.ExtractPlant(spec, plant, "Stub")
		r := runner.RunOnce(tiots.NewDetIUT(impl, tiots.Scale, nil))
		fmt.Printf("conformant implementation: %s\n", r)
		fmt.Printf("trace: %s\n", r.Trace.Format(spec, tiots.Scale))
		exitOn(r)
		return
	}

	// Mutation campaign, one cell per mutant through the shared runner.
	muts := mutate.All(spec, plant, *perOp)
	fmt.Printf("fault-detection campaign: %d mutants\n\n", len(muts))
	byOp := map[string][3]int{} // killed, passed, inconclusive
	for _, m := range muts {
		factory := campaign.LocalIUT(model.ExtractPlant(m.Sys, plant, "Stub"), tiots.Scale, m.Policy)
		tally := runner.RunCell(factory, 1, 0)
		counts := byOp[m.Operator]
		switch tally.Verdict() {
		case texec.Fail:
			counts[0]++
		case texec.Pass:
			counts[1]++
		default:
			counts[2]++
		}
		byOp[m.Operator] = counts
		fmt.Printf("  %-60s %s\n", m.Description, tally.Verdict())
	}
	fmt.Println()
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	totalKilled, total := 0, 0
	fmt.Printf("%-18s %8s %8s %8s %8s\n", "operator", "mutants", "killed", "passed", "incon")
	for _, op := range ops {
		c := byOp[op]
		n := c[0] + c[1] + c[2]
		fmt.Printf("%-18s %8d %8d %8d %8d\n", op, n, c[0], c[1], c[2])
		totalKilled += c[0]
		total += n
	}
	fmt.Printf("\nkill rate: %d/%d (%.0f%%)\n", totalKilled, total, 100*float64(totalKilled)/float64(total))
	fmt.Println("(surviving mutants hide outside the behaviour this test purpose exercises —")
	fmt.Println(" targeted testing is partially complete w.r.t. the purpose, Theorem 11)")
}

// loadSpec resolves the specification and the test-purpose source from the
// flags: a -file DSL model (formula required), or a built-in model with
// its standard purpose as the default.
func loadSpec(modelName, file, formula string) (*dsl.File, string, error) {
	switch {
	case file != "":
		if modelName != "" {
			return nil, "", fmt.Errorf("-model and -file are mutually exclusive")
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, "", err
		}
		f, err := dsl.Parse(string(data))
		if err != nil {
			return nil, "", err
		}
		if formula == "" {
			return nil, "", fmt.Errorf("-file models need an explicit -formula")
		}
		return f, formula, nil
	case modelName == "" || modelName == "smartlight":
		spec := models.SmartLight()
		if formula == "" {
			formula = models.SmartLightGoal
		}
		return &dsl.File{Sys: spec}, formula, nil
	default:
		return nil, "", fmt.Errorf("unknown -model %q; use smartlight or -file <path>", modelName)
	}
}

// resolvePlant determines which processes play the implementation under
// test: an explicit -plant list, the built-in model's convention, or — for
// file models — the texec.GuessPlantProcs default (processes emitting
// outputs or receiving inputs, the conventional IUT shape of Def. 3).
func resolvePlant(spec *model.System, builtin bool, plantList string) ([]int, error) {
	if plantList != "" {
		var plant []int
		for _, name := range strings.Split(plantList, ",") {
			name = strings.TrimSpace(name)
			pi, ok := spec.ProcByName(name)
			if !ok {
				return nil, fmt.Errorf("-plant: no process named %q in %s", name, spec.Name)
			}
			plant = append(plant, pi)
		}
		return plant, nil
	}
	if builtin {
		return models.SmartLightPlant(spec), nil
	}
	// The canonical default, shared with texec.Run and cmd/campaign:
	// processes that emit outputs or receive inputs.
	plant := texec.GuessPlantProcs(spec)
	if len(plant) == 0 {
		return nil, fmt.Errorf("no process of %s emits an output or receives an input; name the plant explicitly with -plant", spec.Name)
	}
	return plant, nil
}

func exitOn(r texec.Result) {
	if r.Verdict != texec.Pass {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "testexec:", err)
	os.Exit(1)
}
