// Command testexec runs strategy-based conformance tests (Algorithm 3.1)
// against simulated implementations, including the fault-detection
// campaign of the paper's future-work item 3.
//
// Usage:
//
//	testexec -model smartlight                     # one conformant run
//	testexec -model smartlight -campaign           # mutation campaign
//	testexec -model smartlight -serve :9000        # host an IUT over TCP
//	testexec -model smartlight -connect host:9000  # test a remote IUT
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tigatest/internal/adapter"
	"tigatest/internal/game"
	"tigatest/internal/model"
	"tigatest/internal/models"
	"tigatest/internal/mutate"
	"tigatest/internal/tctl"
	"tigatest/internal/texec"
	"tigatest/internal/tiots"
)

func main() {
	var (
		modelName = flag.String("model", "smartlight", "built-in model: smartlight")
		formula   = flag.String("formula", "", "test purpose (default: the model's standard purpose)")
		campaign  = flag.Bool("campaign", false, "run the mutation fault-detection campaign")
		perOp     = flag.Int("perop", 0, "mutants per operator in the campaign (0 = all)")
		serve     = flag.String("serve", "", "serve a conformant IUT on this address instead of testing")
		connect   = flag.String("connect", "", "test an IUT served at this address")
		workers   = flag.Int("workers", 0, "parallel synthesis workers (0 = all cores, 1 = serial)")
	)
	flag.Parse()

	if *modelName != "smartlight" {
		fatal(fmt.Errorf("only the smartlight model is wired into testexec; use the library for others"))
	}
	spec := models.SmartLight()
	plant := models.SmartLightPlant(spec)
	src := *formula
	if src == "" {
		src = models.SmartLightGoal
	}

	if *serve != "" {
		iut := tiots.NewDetIUT(model.ExtractPlant(spec, plant, "Stub"), tiots.Scale, nil)
		srv, err := adapter.Serve(*serve, iut)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("serving a conformant %s implementation on %s (ctrl-c to stop)\n", *modelName, srv.Addr())
		select {}
	}

	f, err := tctl.Parse(models.SmartLightEnv(spec), src)
	if err != nil {
		fatal(err)
	}
	res, err := game.Solve(spec, f, game.Options{Workers: *workers})
	if err != nil {
		fatal(err)
	}
	if !res.Winnable {
		fatal(fmt.Errorf("test purpose %s is not winnable; no strategy to execute", src))
	}
	fmt.Printf("synthesized winning strategy for %s (%d symbolic states)\n\n", f, res.Strategy.NumNodes())

	opts := texec.Options{PlantProcs: plant}

	if *connect != "" {
		cli, err := adapter.Dial(*connect)
		if err != nil {
			fatal(err)
		}
		defer cli.Close()
		r := texec.Run(res.Strategy, cli, opts)
		fmt.Printf("remote IUT at %s: %s\n", *connect, r)
		exitOn(r)
		return
	}

	if !*campaign {
		iut := tiots.NewDetIUT(model.ExtractPlant(spec, plant, "Stub"), tiots.Scale, nil)
		r := texec.Run(res.Strategy, iut, opts)
		fmt.Printf("conformant implementation: %s\n", r)
		fmt.Printf("trace: %s\n", r.Trace.Format(spec, tiots.Scale))
		exitOn(r)
		return
	}

	// Mutation campaign.
	muts := mutate.All(spec, plant, *perOp)
	fmt.Printf("fault-detection campaign: %d mutants\n\n", len(muts))
	byOp := map[string][3]int{} // killed, passed, inconclusive
	for _, m := range muts {
		iut := tiots.NewDetIUT(model.ExtractPlant(m.Sys, plant, "Stub"), tiots.Scale, m.Policy)
		r := texec.Run(res.Strategy, iut, opts)
		counts := byOp[m.Operator]
		switch r.Verdict {
		case texec.Fail:
			counts[0]++
		case texec.Pass:
			counts[1]++
		default:
			counts[2]++
		}
		byOp[m.Operator] = counts
		fmt.Printf("  %-60s %s\n", m.Description, r.Verdict)
	}
	fmt.Println()
	ops := make([]string, 0, len(byOp))
	for op := range byOp {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	totalKilled, total := 0, 0
	fmt.Printf("%-18s %8s %8s %8s %8s\n", "operator", "mutants", "killed", "passed", "incon")
	for _, op := range ops {
		c := byOp[op]
		n := c[0] + c[1] + c[2]
		fmt.Printf("%-18s %8d %8d %8d %8d\n", op, n, c[0], c[1], c[2])
		totalKilled += c[0]
		total += n
	}
	fmt.Printf("\nkill rate: %d/%d (%.0f%%)\n", totalKilled, total, 100*float64(totalKilled)/float64(total))
	fmt.Println("(surviving mutants hide outside the behaviour this test purpose exercises —")
	fmt.Println(" targeted testing is partially complete w.r.t. the purpose, Theorem 11)")
}

func exitOn(r texec.Result) {
	if r.Verdict != texec.Pass {
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "testexec:", err)
	os.Exit(1)
}
