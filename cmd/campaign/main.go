// Command campaign runs a coverage-guided test campaign: it derives a
// test suite from coverage goals of the specification (one synthesized
// strategy per uncovered goal, strict game first with cooperative
// fallback), executes every (strategy × implementation) cell in parallel
// against the conformant implementation and seeded mutants, and reports
// per-goal coverage, the verdict matrix and per-operator mutation scores.
//
// Usage:
//
//	campaign -model smartlight                      # edge coverage, all mutants
//	campaign -model traingate -coverage all -json report.json
//	campaign -model lep -n 3 -mutants 10 -seed 7 -workers 8
//	campaign -file m.tga -plant P -coverage loc
//	campaign -model smartlight -connect host:9000   # add a remote IUT row
//
// The canonical JSON report (-json) excludes wall-clock measurements, so
// two runs with the same flags and -seed produce byte-identical files;
// -timing adds the volatile timing section (wall-clock plus the planner's
// shared-core skeleton counters). Strategy synthesis defaults to
// deterministic propagation; raising -prop-workers above 1 trades
// byte-reproducibility of inconclusive-reason texts for solve speed. Edge
// goals are planned as ghost overlays on one shared explored core
// (-shared-core, on by default); -shared-core=false re-explores a clone
// per edge, producing the identical report more slowly. Execution consults
// compiled strategy decision tables (-compile, on by default);
// -compile=false falls back to interpreted consultation, again with a
// byte-identical report (the E8 ablation).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"tigatest/internal/campaign"
	"tigatest/internal/dsl"
	"tigatest/internal/game"
	"tigatest/internal/model"
	"tigatest/internal/models"
	"tigatest/internal/tctl"
)

func main() {
	var (
		modelName   = flag.String("model", "", "built-in model: smartlight, traingate or lep (default smartlight when -file is absent)")
		nodes       = flag.Int("n", 2, "LEP instance size (with -model lep)")
		file        = flag.String("file", "", "model file in the tigatest DSL")
		plantList   = flag.String("plant", "", "comma-separated plant process names (default: model convention / output emitters)")
		coverage    = flag.String("coverage", "edge", "coverage goals: loc, edge or all")
		mutants     = flag.Int("mutants", 0, "mutants: 0 = one per (operator, site), n > 0 = n seeded random, -1 = none")
		workers     = flag.Int("workers", 0, "concurrent campaign cells (0 = all cores)")
		repeats     = flag.Int("repeats", 1, "runs per (strategy x IUT) cell, with distinct derived seeds")
		seed        = flag.Int64("seed", 1, "campaign seed (mutant sampling, per-repeat seeds)")
		jsonOut     = flag.String("json", "", "write the JSON report to this file")
		timing      = flag.Bool("timing", false, "include volatile wall-clock timings in the JSON report")
		connect     = flag.String("connect", "", "also test a remote IUT served at this address (adapter protocol)")
		solvWorkers = flag.Int("solver-workers", 1, "strategy-synthesis exploration workers (0 = all cores)")
		propWorkers = flag.Int("prop-workers", 1, "propagation workers; > 1 is faster but makes reason texts schedule-dependent")
		sharedCore  = flag.Bool("shared-core", true, "solve edge goals as ghost overlays on one shared explored core (false: re-explore a clone per edge; reports are identical either way)")
		compile     = flag.Bool("compile", true, "execute through compiled strategy decision tables (false: interpreted consultation; reports are identical either way)")
		incremental = flag.Bool("incremental", true, "re-solve suite purposes on mutants incrementally over the shared core's dirty cone (false: re-explore each mutant cold; reports are identical either way)")
		timeout     = flag.Duration("timeout", 0, "abort the campaign cooperatively after this long (0 = none); SIGINT aborts the same way")
	)
	flag.Parse()

	// One cancel channel threads through planner, solver and executor:
	// closed by -timeout or the first SIGINT (a second SIGINT kills hard).
	cancel := make(chan struct{})
	var once sync.Once
	cancelOnce := func() { once.Do(func() { close(cancel) }) }
	if *timeout > 0 {
		t := time.AfterFunc(*timeout, cancelOnce)
		defer t.Stop()
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT)
	go func() {
		<-sig
		fmt.Fprintln(os.Stderr, "campaign: interrupt — aborting cooperatively (interrupt again to kill)")
		cancelOnce()
		signal.Stop(sig)
	}()

	sys, env, plant, err := loadModel(*modelName, *file, *nodes, *plantList)
	if err != nil {
		fatal(err)
	}
	cov, err := campaign.ParseCoverage(*coverage)
	if err != nil {
		fatal(err)
	}

	rep, err := campaign.Run(sys, env, campaign.Options{
		Coverage:           cov,
		Plant:              plant,
		Mutants:            *mutants,
		Workers:            *workers,
		Repeats:            *repeats,
		Seed:               *seed,
		Solver:             game.Options{Workers: *solvWorkers, PropagationWorkers: *propWorkers, Cancel: cancel},
		RemoteAddr:         *connect,
		DisableSharedCore:  !*sharedCore,
		DisableCompile:     !*compile,
		DisableIncremental: !*incremental,
	})
	if err != nil {
		if errors.Is(err, game.ErrCanceled) {
			fmt.Fprintln(os.Stderr, "campaign: canceled (timeout or interrupt); no report produced")
			os.Exit(3)
		}
		fatal(err)
	}

	rep.Render(os.Stdout)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fatal(err)
		}
		if err := rep.WriteJSON(f, *timing); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}

	// Exit 2 when the campaign itself is defective: a winnable goal whose
	// conformant run did not attain it, or a failure against either
	// conformant determinization (eager or lazy — both are sound
	// implementations of the specification).
	defective := rep.Summary.Covered < rep.Summary.Coverable
	for _, row := range rep.Matrix {
		if row.IUT != "conformant" && row.IUT != campaign.LazyRowName {
			continue
		}
		for _, c := range row.Cells {
			if c.Fail > 0 {
				defective = true
			}
		}
	}
	if defective {
		fmt.Fprintln(os.Stderr, "campaign: missed coverable goals or conformant failures (see report)")
		os.Exit(2)
	}
}

// loadModel resolves the specification, its parse environment and the
// plant process indices.
func loadModel(modelName, file string, nodes int, plantList string) (*model.System, *tctl.ParseEnv, []int, error) {
	var sys *model.System
	var env *tctl.ParseEnv
	var plant []int
	switch {
	case file != "":
		if modelName != "" {
			return nil, nil, nil, fmt.Errorf("-model and -file are mutually exclusive")
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, nil, nil, err
		}
		f, err := dsl.Parse(string(data))
		if err != nil {
			return nil, nil, nil, err
		}
		sys, env = f.Sys, f.ParseEnv()
	default:
		if modelName == "" {
			modelName = "smartlight"
		}
		var err error
		sys, env, plant, _, err = models.ByName(modelName, nodes)
		if err != nil {
			return nil, nil, nil, err
		}
	}
	if plantList != "" {
		plant = nil
		for _, name := range strings.Split(plantList, ",") {
			name = strings.TrimSpace(name)
			pi, ok := sys.ProcByName(name)
			if !ok {
				return nil, nil, nil, fmt.Errorf("-plant: no process named %q in %s", name, sys.Name)
			}
			plant = append(plant, pi)
		}
	}
	return sys, env, plant, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "campaign:", err)
	os.Exit(1)
}
