// Command tigad is the persistent test daemon: it loads models once,
// serves the line-JSON control API (synthesize / run / campaign / stats)
// and hosts many concurrent online test sessions. Strategy synthesis runs
// behind a content-addressed singleflight cache, so N clients requesting
// the same goal cost one game solve; campaign requests route their
// per-goal solves through the same cache on the model's shared batch, so
// concurrent campaigns pay each goal once and explore the un-instrumented
// core once (the stats endpoint reports skeleton_core_hits/_misses next to
// the cache counters); the session semaphore answers overload with an
// explicit busy event; SIGTERM/SIGINT drain gracefully (in-flight requests
// finish, then every session closes) and the final service stats are
// printed as JSON.
//
// Usage:
//
//	tigad                                   # smartlight + traingate on 127.0.0.1:7699
//	tigad -listen 127.0.0.1:0               # ephemeral port (printed on stdout)
//	tigad -models smartlight -lep-n 3       # add the LEP instance as model "lep"
//	tigad -file extra.tga -max-sessions 256
//
// Talk to it with cmd/tigaload (load generation), or by hand:
//
//	printf '%s\n' '{"op":"synthesize","model":"smartlight","purpose":"control: A<> IUT.Bright"}' | nc 127.0.0.1 7699
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tigatest/internal/dsl"
	"tigatest/internal/game"
	"tigatest/internal/models"
	"tigatest/internal/service"
)

func main() {
	var files multiFlag
	var (
		listen      = flag.String("listen", "127.0.0.1:7699", "control-API listen address")
		modelList   = flag.String("models", "smartlight,traingate", "comma-separated built-in models to load (smartlight, traingate, lep — lep needs -lep-n)")
		lepN        = flag.Int("lep-n", 0, "LEP instance size; > 0 also loads model \"lep\"")
		maxSessions = flag.Int("max-sessions", 64, "concurrent session bound; extra connections get an explicit busy response")
		solvWorkers = flag.Int("solver-workers", 0, "strategy-synthesis exploration workers (0 = all cores)")
		propWorkers = flag.Int("prop-workers", 1, "propagation workers; > 1 trades byte-identical responses for solve speed")
		reqTimeout  = flag.Duration("request-timeout", 0, "default per-request deadline (0 = none); requests override with deadline_ms")
		quiet       = flag.Bool("quiet", false, "suppress operational logging")
	)
	flag.Var(&files, "file", "additional model file in the tigatest DSL (repeatable)")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tigad: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}
	svc := service.New(service.Options{
		MaxSessions:    *maxSessions,
		Solver:         game.Options{Workers: *solvWorkers, PropagationWorkers: *propWorkers},
		RequestTimeout: *reqTimeout,
		Logf:           logf,
	})

	for _, name := range strings.Split(*modelList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sys, env, plant, _, err := models.ByName(name, *lepN)
		must(err)
		must(svc.AddModel(sys, env, plant))
	}
	if *lepN > 0 && !strings.Contains(*modelList, "lep") {
		sys, env, plant, _, err := models.ByName("lep", *lepN)
		must(err)
		must(svc.AddModel(sys, env, plant))
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		must(err)
		f, err := dsl.Parse(string(data))
		must(err)
		must(svc.AddModel(f.Sys, f.ParseEnv(), nil))
	}

	must(svc.Listen(*listen))
	// The chosen address goes to stdout so scripts using -listen :0 can
	// pick it up.
	fmt.Printf("tigad: listening on %s\n", svc.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Fprintln(os.Stderr, "tigad: draining")
	svc.Drain()

	out, err := json.MarshalIndent(svc.StatsSnapshot(), "", "  ")
	must(err)
	fmt.Println(string(out))
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tigad:", err)
	os.Exit(1)
}
