// Command tigad is the persistent test daemon: it loads models once,
// serves the line-JSON control API (synthesize / run / campaign / stats)
// and hosts many concurrent online test sessions. Strategy synthesis runs
// behind a content-addressed singleflight cache, so N clients requesting
// the same goal cost one game solve; campaign requests route their
// per-goal solves through the same cache on the model's shared batch, so
// concurrent campaigns pay each goal once and explore the un-instrumented
// core once (the stats endpoint reports skeleton_core_hits/_misses next to
// the cache counters); the session semaphore answers overload with an
// explicit busy event; SIGTERM/SIGINT drain gracefully (in-flight requests
// finish, then every session closes) and the final service stats are
// printed as JSON.
//
// Usage:
//
//	tigad                                   # smartlight + traingate on 127.0.0.1:7699
//	tigad -listen 127.0.0.1:0               # ephemeral port (printed on stdout)
//	tigad -models smartlight -lep-n 3       # add the LEP instance as model "lep"
//	tigad -file extra.tga -max-sessions 256
//	tigad -metrics-addr 127.0.0.1:9699      # Prometheus /metrics + pprof on /debug/pprof/
//	tigad -log-level info                   # structured access log (one line per request)
//	tigad -obs=false                        # E9 ablation: no histograms, tracing or access log
//
// Fleet mode: N daemons with the same model set become one logical
// strategy cache. Every member lists the full fleet (itself included)
// via -peers (static) or -peers-file (watched roster file); the owner of
// each strategy key — consistent hashing over the alive members — solves
// it, everyone else forwards the miss and caches the compiled answer:
//
//	tigad -listen 10.0.0.1:7699 -peers 10.0.0.1:7699,10.0.0.2:7699,10.0.0.3:7699
//	tigad -listen 10.0.0.2:7699 -peers-file fleet.json   # {"members":[{"addr":...}]}
//
// Talk to it with cmd/tigaload (load generation), or by hand:
//
//	printf '%s\n' '{"op":"synthesize","model":"smartlight","purpose":"control: A<> IUT.Bright"}' | nc 127.0.0.1 7699
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // mounted on the -metrics-addr mux, not a public default mux
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tigatest/internal/cluster"
	"tigatest/internal/dsl"
	"tigatest/internal/game"
	"tigatest/internal/models"
	"tigatest/internal/service"
)

func main() {
	var files multiFlag
	var (
		listen      = flag.String("listen", "127.0.0.1:7699", "control-API listen address")
		modelList   = flag.String("models", "smartlight,traingate", "comma-separated built-in models to load (smartlight, traingate, lep — lep needs -lep-n)")
		lepN        = flag.Int("lep-n", 0, "LEP instance size; > 0 also loads model \"lep\"")
		maxSessions = flag.Int("max-sessions", 64, "concurrent session bound; extra connections get an explicit busy response")
		solvWorkers = flag.Int("solver-workers", 0, "strategy-synthesis exploration workers (0 = all cores)")
		propWorkers = flag.Int("prop-workers", 1, "propagation workers; > 1 trades byte-identical responses for solve speed")
		reqTimeout  = flag.Duration("request-timeout", 0, "default per-request deadline (0 = none); requests override with deadline_ms")
		quiet       = flag.Bool("quiet", false, "suppress operational logging")

		peers         = flag.String("peers", "", "fleet mode: comma-separated member addresses host:port[@weight], this daemon included")
		peersFile     = flag.String("peers-file", "", "fleet mode: JSON roster file {\"members\":[{\"addr\":\"host:port\",\"weight\":n}]}, polled for join/leave")
		advertise     = flag.String("advertise", "", "address this daemon is known by in the fleet (default: -listen; required with -listen :0)")
		peerTimeout   = flag.Duration("peer-timeout", 2*time.Second, "bound on one peer forward or health probe")
		probeInterval = flag.Duration("probe-interval", time.Second, "peer health-probe interval")
		metricsAddr   = flag.String("metrics-addr", "", "serve Prometheus metrics on http://ADDR/metrics plus net/http/pprof on /debug/pprof/ (empty = off)")

		obsOn    = flag.Bool("obs", true, "observability layer: latency histograms, request tracing, access log (-obs=false is the E9 ablation)")
		logLevel = flag.String("log-level", "warn", "structured-log threshold: debug (per-span records), info (per-request access log), warn, error")
		logJSON  = flag.Bool("log-json", false, "emit structured logs as JSON lines instead of logfmt-style text")
	)
	flag.Var(&files, "file", "additional model file in the tigatest DSL (repeatable)")
	flag.Parse()

	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "tigad: "+format+"\n", args...)
	}
	if *quiet {
		logf = nil
	}

	// Structured logging rides the observability layer. The default
	// threshold (warn) keeps the daemon's output byte-identical to the
	// pre-observability builds: the per-request access log is Info, the
	// per-span records are Debug.
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal(fmt.Errorf("-log-level: %v", err))
	}
	var handler slog.Handler
	hopts := &slog.HandlerOptions{Level: level}
	if *logJSON {
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	} else {
		handler = slog.NewTextHandler(os.Stderr, hopts)
	}

	svc := service.New(service.Options{
		MaxSessions:    *maxSessions,
		Solver:         game.Options{Workers: *solvWorkers, PropagationWorkers: *propWorkers},
		RequestTimeout: *reqTimeout,
		Logf:           logf,
		DisableObs:     !*obsOn,
		Slog:           slog.New(handler),
	})

	for _, name := range strings.Split(*modelList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		sys, env, plant, _, err := models.ByName(name, *lepN)
		must(err)
		must(svc.AddModel(sys, env, plant))
	}
	if *lepN > 0 && !strings.Contains(*modelList, "lep") {
		sys, env, plant, _, err := models.ByName("lep", *lepN)
		must(err)
		must(svc.AddModel(sys, env, plant))
	}
	for _, path := range files {
		data, err := os.ReadFile(path)
		must(err)
		f, err := dsl.Parse(string(data))
		must(err)
		must(svc.AddModel(f.Sys, f.ParseEnv(), nil))
	}

	if *peers != "" && *peersFile != "" {
		fatal(fmt.Errorf("-peers and -peers-file are mutually exclusive"))
	}

	must(svc.Listen(*listen))
	// The chosen address goes to stdout so scripts using -listen :0 can
	// pick it up.
	fmt.Printf("tigad: listening on %s\n", svc.Addr())

	var tracker *cluster.Tracker
	if *peers != "" || *peersFile != "" {
		self := *advertise
		if self == "" {
			self = *listen
		}
		if host, port, err := net.SplitHostPort(self); err != nil || port == "0" || port == "" || host == "" {
			fatal(fmt.Errorf("fleet mode needs a concrete advertise address (got %q); set -advertise with -listen :0", self))
		}
		var store cluster.Store
		if *peers != "" {
			ms, err := cluster.ParsePeers(*peers)
			must(err)
			store = cluster.StaticStore(ms)
		} else {
			store = cluster.FileStore{Path: *peersFile}
		}
		tr, err := cluster.NewTracker(cluster.Member{Addr: self}, store, cluster.TrackerOptions{
			ProbeInterval: *probeInterval,
		})
		must(err)
		must(svc.EnableCluster(service.ClusterOptions{
			Tracker:        tr,
			ForwardTimeout: *peerTimeout,
		}))
		tr.Start()
		tracker = tr
		fmt.Fprintf(os.Stderr, "tigad: fleet member %s (%d configured)\n", self, len(tr.Configured()))
	}

	if *metricsAddr != "" {
		mln, err := net.Listen("tcp", *metricsAddr)
		must(err)
		mux := http.NewServeMux()
		// The service handler renders counters plus (observability on) the
		// latency histogram families, with the exposition Content-Type.
		mux.Handle("/metrics", svc.MetricsHandler())
		// net/http/pprof registers on http.DefaultServeMux; re-exporting the
		// prefix here keeps profiling off the control port and on the
		// operator-facing metrics listener.
		mux.Handle("/debug/pprof/", http.DefaultServeMux)
		go func() { _ = http.Serve(mln, mux) }()
		fmt.Printf("tigad: metrics on http://%s/metrics\n", mln.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, syscall.SIGINT)
	<-sig
	fmt.Fprintln(os.Stderr, "tigad: draining")
	// Drain flips the draining flag first, so peer forwards are refused
	// (typed "draining" — the forwarder solves locally) from the first
	// instant of shutdown, before in-flight local sessions finish; the
	// tracker stops probing only after the last session is gone.
	svc.Drain()
	if tracker != nil {
		tracker.Close()
	}

	out, err := json.MarshalIndent(svc.StatsSnapshot(), "", "  ")
	must(err)
	fmt.Println(string(out))
}

// multiFlag collects repeatable string flags.
type multiFlag []string

func (m *multiFlag) String() string { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func must(err error) {
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tigad:", err)
	os.Exit(1)
}
