// Command tiga synthesizes winning strategies for TIOGA models and test
// purposes, the strategy-generation box of the paper's Fig. 4 (a
// UPPAAL-TIGA work-alike).
//
// Usage:
//
//	tiga -model smartlight -formula "control: A<> IUT.Bright"
//	tiga -model lep -n 4 -formula TP2
//	tiga -file mymodel.tga -formula "control: A<> P.Goal" -json out.json
//	tiga -model smartlight -dump            # print the model in DSL form
//
// Built-in models: smartlight (the paper's running example, Fig. 2+3) and
// lep (the Leader Election Protocol of §4, parameterized by -n). For lep,
// -formula also accepts the shorthands TP1, TP2 and TP3.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"tigatest/internal/dsl"
	"tigatest/internal/game"
	"tigatest/internal/models"
	"tigatest/internal/tctl"
)

func main() {
	var (
		modelName   = flag.String("model", "", "built-in model: smartlight | lep")
		file        = flag.String("file", "", "model file in the tigatest DSL")
		n           = flag.Int("n", 3, "number of nodes for the lep model")
		formula     = flag.String("formula", "", "test purpose (control: A<> ... / control: A[] ...)")
		dump        = flag.Bool("dump", false, "print the model in DSL form and exit")
		backward    = flag.Bool("backward", false, "use the backward fixpoint solver instead of on-the-fly")
		early       = flag.Bool("early", false, "stop as soon as the initial state is decided")
		jsonOut     = flag.String("json", "", "write the strategy as JSON to this file")
		budget      = flag.Duration("budget", 0, "time budget (0 = none)")
		memMB       = flag.Uint64("mem", 0, "memory budget in MiB (0 = none)")
		workers     = flag.Int("workers", 0, "parallel exploration workers (0 = all cores, 1 = serial)")
		propWorkers = flag.Int("prop-workers", 0, "parallel propagation workers (0 = same as -workers)")
		quiet       = flag.Bool("quiet", false, "suppress the strategy printout")
	)
	flag.Parse()

	f, err := loadModel(*modelName, *file, *n)
	if err != nil {
		fatal(err)
	}
	if *dump {
		fmt.Print(dsl.Print(f.Sys, f.Ranges))
		return
	}
	src := resolveFormula(*modelName, *formula)
	if src == "" {
		fatal(fmt.Errorf("missing -formula"))
	}
	purpose, err := tctl.Parse(f.ParseEnv(), src)
	if err != nil {
		fatal(err)
	}

	opts := game.Options{
		EarlyTermination:   *early,
		TimeBudget:         *budget,
		MemBudget:          *memMB << 20,
		Workers:            *workers,
		PropagationWorkers: *propWorkers,
	}
	if *backward {
		opts.Algorithm = game.Backward
	}
	t0 := time.Now()
	res, err := game.Solve(f.Sys, purpose, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("formula:  %s\n", purpose)
	fmt.Printf("model:    %s (%d processes, %d clocks, %d edges)\n",
		f.Sys.Name, len(f.Sys.Procs), f.Sys.NumClocks()-1, f.Sys.NumEdges())
	effWorkers := *workers
	if effWorkers <= 0 {
		effWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("solver:   %s (workers=%d)\n", opts.Algorithm, effWorkers)
	fmt.Printf("result:   winnable=%v\n", res.Winnable)
	fmt.Printf("effort:   %d symbolic states, %d transitions, %d re-evaluations, %v, peak heap %d MiB\n",
		res.Stats.Nodes, res.Stats.Transitions, res.Stats.Reevals, time.Since(t0).Round(time.Millisecond), res.Stats.PeakHeapBytes>>20)
	if res.Stats.PropagationRounds > 0 {
		fmt.Printf("backward: %d SCCs, %d propagation passes, %d cross-SCC messages\n",
			res.Stats.SCCs, res.Stats.PropagationRounds, res.Stats.CrossSCCMessages)
	}

	if res.Strategy != nil && !*quiet {
		fmt.Println()
		res.Strategy.Print(os.Stdout)
	}
	if res.Strategy != nil && *jsonOut != "" {
		data, err := json.MarshalIndent(res.Strategy, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("strategy written to %s\n", *jsonOut)
	}
	if !res.Winnable {
		os.Exit(2)
	}
}

func loadModel(name, file string, n int) (*dsl.File, error) {
	switch {
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return dsl.Parse(string(data))
	case name == "smartlight":
		sys := models.SmartLight()
		return &dsl.File{Sys: sys, Ranges: nil}, nil
	case name == "lep":
		sys := models.LEP(models.LEPOptions{Nodes: n})
		return &dsl.File{Sys: sys, Ranges: models.LEPEnv(sys, n).Ranges}, nil
	default:
		return nil, fmt.Errorf("specify -model smartlight|lep or -file <path>")
	}
}

func resolveFormula(modelName, f string) string {
	if modelName == "lep" {
		switch f {
		case "TP1":
			return models.LEPTP1
		case "TP2":
			return models.LEPTP2
		case "TP3":
			return models.LEPTP3
		}
	}
	if modelName == "smartlight" && f == "" {
		return models.SmartLightGoal
	}
	return f
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tiga:", err)
	os.Exit(1)
}
