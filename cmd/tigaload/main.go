// Command tigaload is the load generator for the tigad service: it spawns
// K concurrent sessions, each issuing run requests for the same goal (the
// regime the strategy cache is built for — exactly one solve, K-1 hits),
// hosting its own conformant implementation inline over the session
// connection by default, and reports latency percentiles, throughput and
// the daemon's cache/session counters as JSON for the bench trajectory.
//
// Each session also exercises the compiled-strategy path end to end: it
// fetches the wire-encoded compiled decision tables (the "strategy" op),
// decodes them against its own copy of the model, verifies the advertised
// checksum, and executes one test run locally — no daemon round-trips per
// consultation.
//
// Exit status is non-zero when any session or request failed, the local
// compiled run misbehaved, or when the daemon's cache-hit /
// compiled-hit counts end below -min-cache-hits / -min-compiled-hits —
// which is what lets CI enforce "zero failed sessions, a warm cache and a
// live compiled path" on a smoke run.
//
// Fleet mode (-peers) round-robins sessions across N daemons: every
// (re)dial rotates to the next member, so a member that drains mid-load
// costs a redial, never a failed request. The report gains per-peer
// request counts, latency percentiles and cluster counters, plus the
// fleet-wide forwarded_hits aggregate (requests served with peer-fetched
// strategy material); floors like -min-cache-hits apply to the sums.
//
// Soak mode (-duration) replaces the fixed per-session request count with
// a wall-clock stop condition, and -max-p99-ms turns the client-observed
// p99 into an SLO assertion (non-zero exit when exceeded; a soak run also
// fails if any daemon recovered a panic). When the daemons run with
// observability enabled, the report additionally carries daemon-side
// percentiles (server_latency_ms) derived from the request-duration
// histograms merged across the fleet.
//
// Usage:
//
//	tigaload -addr 127.0.0.1:7699 -sessions 8 -requests 4
//	tigaload -addr 127.0.0.1:7699 -iut local -json BENCH_service.json -min-cache-hits 1
//	tigaload -peers 127.0.0.1:7699,127.0.0.1:7700,127.0.0.1:7701 -min-forwarded-hits 1
//	tigaload -sessions 32 -duration 60s -max-p99-ms 250 -json BENCH_soak.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tigatest/internal/faultconn"
	"tigatest/internal/game"
	"tigatest/internal/model"
	"tigatest/internal/models"
	"tigatest/internal/obs"
	"tigatest/internal/service"
	"tigatest/internal/texec"
	"tigatest/internal/tiots"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7699", "tigad control-API address")
		peersCSV = flag.String("peers", "", "fleet mode: comma-separated daemon addresses; sessions and redials round-robin across them (overrides -addr)")
		minFwd   = flag.Int64("min-forwarded-hits", 0, "fail unless the fleet reports at least this many peer-forwarded hits in total")
		sessions = flag.Int("sessions", 8, "concurrent sessions (K)")
		requests = flag.Int("requests", 4, "run requests per session")
		modelN   = flag.String("model", "smartlight", "built-in model: smartlight, traingate or lep")
		lepNodes = flag.Int("n", 2, "LEP instance size (with -model lep)")
		purpose  = flag.String("purpose", "", "test purpose (default: the model's standard goal)")
		mode     = flag.String("mode", "", "game mode: auto (default), strict or cooperative")
		iutKind  = flag.String("iut", "inline", "implementation per run: inline (hosted on the session) or local (daemon-side)")
		repeats  = flag.Int("repeats", 1, "repeats per run request")
		seed     = flag.Int64("seed", 1, "base seed; session k uses seed+k")
		jsonOut  = flag.String("json", "", "write the load report as JSON to this file")
		minHits  = flag.Int64("min-cache-hits", 0, "fail unless the daemon reports at least this many cache hits")
		minComp  = flag.Int64("min-compiled-hits", 0, "fail unless the daemon reports at least this many compiled-strategy hits")
		wait     = flag.Duration("wait", 10*time.Second, "dial retry window (daemon may still be starting, or briefly busy)")

		soakDur  = flag.Duration("duration", 0, "soak mode: each session issues requests until this wall-clock elapses (replaces -requests as the stop condition)")
		maxP99MS = flag.Float64("max-p99-ms", 0, "SLO floor: fail when the client-observed p99 request latency exceeds this many milliseconds (0 = no SLO)")

		reqTimeout = flag.Duration("request-timeout", 0, "per-request deadline sent as deadline_ms (0 = none)")
		maxRetries = flag.Int("retries", 3, "retries per request on transient errors (expired deadline, broken session), capped exponential backoff")
		chaosSeed  = flag.Int64("chaos-seed", 0, "non-zero: route session connections through the seeded fault injector (internal/faultconn); the stats fetch stays clean")
		tolerate   = flag.Bool("tolerate-failures", false, "exit zero despite failed sessions/requests (chaos smoke: crash-freedom is the assertion, not success)")
	)
	flag.Parse()

	sys, _, plant, goal, err := models.ByName(*modelN, *lepNodes)
	if err != nil {
		fatal(err)
	}
	if *purpose == "" {
		*purpose = goal
	}
	impl := model.ExtractPlant(sys, plant, "Stub")

	// targets is the dial rotation: the fleet members in -peers order, or
	// just -addr. Every (re)dial advances rr, so sessions spread across the
	// fleet and a redial after a member drains lands on the next one.
	targets := []string{*addr}
	if *peersCSV != "" {
		targets = targets[:0]
		for _, p := range strings.Split(*peersCSV, ",") {
			if p = strings.TrimSpace(p); p != "" {
				targets = append(targets, p)
			}
		}
		if len(targets) == 0 {
			fatal(fmt.Errorf("-peers lists no addresses"))
		}
	}
	var rr atomic.Int64

	lat := make([][]time.Duration, *sessions)
	var latMu sync.Mutex
	peerLat := map[string][]time.Duration{} // request latency by serving peer
	var failedSessions, failedRequests, pass, failV, incon, dialRetries atomic.Int64
	var localRuns, localPass, compiledBytes atomic.Int64
	var timeouts, retried, chaosDials atomic.Int64
	// Each (re)dial under chaos draws a fresh derived seed, so redialed
	// sessions replay a different (still deterministic) fault schedule.
	sessionDial := func() (*service.Client, string, error) {
		var wrap func(net.Conn) net.Conn
		if *chaosSeed != 0 {
			cseed := deriveSeed(*chaosSeed, int(chaosDials.Add(1)))
			wrap = func(c net.Conn) net.Conn {
				return faultconn.Wrap(c, faultconn.Options{
					Seed:          cseed,
					LatencyP:      0.05,
					FragmentP:     0.25,
					GarbageP:      0.02,
					CloseAfterOps: 400,
				})
			}
		}
		return fleetDial(targets, &rr, *wait, wrap, &dialRetries)
	}
	var wg sync.WaitGroup
	t0 := time.Now()
	soakDeadline := t0.Add(*soakDur)
	for k := 0; k < *sessions; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			cli, cur, err := sessionDial()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tigaload: session %d: %v\n", k, err)
				failedSessions.Add(1)
				return
			}
			// dial is runWithRetry's redial hook; it runs synchronously in
			// this goroutine, so tracking the serving peer in cur is safe.
			dial := func() (*service.Client, error) {
				fresh, a, err := sessionDial()
				if err == nil {
					cur = a
				}
				return fresh, err
			}
			defer func() { cli.Close() }()
			var iut tiots.IUT
			if *iutKind == "inline" {
				iut = tiots.NewDetIUT(impl, tiots.Scale, nil)
			}
			ok := true
			for r := 0; ; r++ {
				if *soakDur > 0 {
					if !time.Now().Before(soakDeadline) {
						break
					}
				} else if r >= *requests {
					break
				}
				req := service.Request{
					Model:      sys.Name,
					Purpose:    *purpose,
					Mode:       *mode,
					Repeats:    *repeats,
					Seed:       *seed + int64(k),
					DeadlineMS: reqTimeout.Milliseconds(),
				}
				start := time.Now()
				fresh, run, err := runWithRetry(cli, req, iut, dial, *maxRetries, &timeouts, &retried)
				cli = fresh
				d := time.Since(start)
				lat[k] = append(lat[k], d)
				latMu.Lock()
				peerLat[cur] = append(peerLat[cur], d)
				latMu.Unlock()
				if err != nil {
					fmt.Fprintf(os.Stderr, "tigaload: session %d request %d: %v\n", k, r, err)
					failedRequests.Add(1)
					ok = false
					break // retries exhausted; the session stream is unreliable
				}
				pass.Add(int64(run.Pass))
				failV.Add(int64(run.Fail))
				incon.Add(int64(run.Incon))
			}
			if ok {
				// Compiled-path smoke: fetch the wire-encoded decision
				// tables, decode locally, verify the checksum, play one run.
				if err := localConsult(cli, sys, impl, plant, *purpose, *mode,
					&localRuns, &localPass, &compiledBytes); err != nil {
					fmt.Fprintf(os.Stderr, "tigaload: session %d strategy: %v\n", k, err)
					failedRequests.Add(1)
					ok = false
				}
			}
			if !ok {
				failedSessions.Add(1)
			}
		}(k)
	}
	wg.Wait()
	wall := time.Since(t0)

	// Final stats over fresh sessions (slots are free now), one per fleet
	// member. Always clean connections — the counters must be readable even
	// when chaos wrecked every load session. A member that drained away
	// mid-load reports no stats but keeps its latency tally.
	var stats *service.Stats
	var sumHits, sumCompiled, forwardedHits, sumPanics int64
	var reqHist *obs.Snapshot // daemons' request histograms, merged fleet-wide
	var peerReports []peerReport
	for _, target := range targets {
		var st *service.Stats
		if cli, err := dialRetry(target, *wait, nil, &dialRetries); err == nil {
			st, err = cli.Stats()
			if err != nil {
				fmt.Fprintf(os.Stderr, "tigaload: stats %s: %v\n", target, err)
			}
			cli.Close()
		} else {
			fmt.Fprintf(os.Stderr, "tigaload: stats session %s: %v\n", target, err)
		}
		if st != nil {
			if stats == nil {
				stats = st
			}
			sumHits += st.Cache.Hits
			sumCompiled += st.Cache.CompiledHits
			sumPanics += st.Sessions.PanicsRecovered
			if st.Cluster != nil {
				forwardedHits += st.Cluster.PeerHits
			}
			for i := range st.Latency {
				if st.Latency[i].Name != "tigad_request_duration_seconds" {
					continue
				}
				if reqHist == nil {
					cp := st.Latency[i]
					reqHist = &cp
				} else if err := reqHist.Merge(st.Latency[i]); err != nil {
					fmt.Fprintf(os.Stderr, "tigaload: histogram merge %s: %v\n", target, err)
				}
			}
		}
		if len(targets) > 1 {
			latMu.Lock()
			pl := append([]time.Duration(nil), peerLat[target]...)
			latMu.Unlock()
			sort.Slice(pl, func(i, j int) bool { return pl[i] < pl[j] })
			pr := peerReport{
				Addr:     target,
				Requests: len(pl),
				Latency:  latencies{P50: percentile(pl, 50), P90: percentile(pl, 90), P99: percentile(pl, 99), Max: percentile(pl, 100)},
				Stats:    st,
			}
			if st != nil && st.Cluster != nil {
				pr.ForwardedHits = st.Cluster.PeerHits
			}
			peerReports = append(peerReports, pr)
		}
	}

	var all []time.Duration
	for _, l := range lat {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	rep := report{
		Addr:               strings.Join(targets, ","),
		Model:              sys.Name,
		Purpose:            *purpose,
		IUT:                *iutKind,
		Sessions:           *sessions,
		RequestsPerSession: *requests,
		Repeats:            *repeats,
		TotalRequests:      len(all),
		FailedSessions:     failedSessions.Load(),
		FailedRequests:     failedRequests.Load(),
		DialRetries:        dialRetries.Load(),
		Timeouts:           timeouts.Load(),
		Retries:            retried.Load(),
		ChaosSeed:          *chaosSeed,
		Verdicts:           verdicts{Pass: pass.Load(), Fail: failV.Load(), Incon: incon.Load()},
		LocalRuns:          localRuns.Load(),
		LocalPass:          localPass.Load(),
		CompiledBytes:      compiledBytes.Load(),
		WallMS:             wall.Milliseconds(),
		Latency: latencies{
			P50: percentile(all, 50), P90: percentile(all, 90),
			P99: percentile(all, 99), Max: percentile(all, 100),
		},
		Stats:         stats,
		Peers:         peerReports,
		ForwardedHits: forwardedHits,
	}
	if wall > 0 {
		rep.ThroughputRPS = float64(len(all)) / wall.Seconds()
	}
	if *soakDur > 0 {
		rep.SoakSeconds = soakDur.Seconds()
	}
	if reqHist != nil && reqHist.Count > 0 {
		// Daemon-side percentiles, derived from the merged request-duration
		// histograms (bucket-resolution upper bounds, fleet-wide).
		rep.ServerLatency = &latencies{
			P50: reqHist.Quantile(0.50) * 1000,
			P90: reqHist.Quantile(0.90) * 1000,
			P99: reqHist.Quantile(0.99) * 1000,
			Max: reqHist.Quantile(1) * 1000,
		}
	}

	if *soakDur > 0 {
		fmt.Printf("tigaload: %d sessions x %s soak against %s (%s): %d failed sessions, %d failed requests\n",
			rep.Sessions, *soakDur, rep.Addr, rep.Model, rep.FailedSessions, rep.FailedRequests)
	} else {
		fmt.Printf("tigaload: %d sessions x %d requests against %s (%s): %d failed sessions, %d failed requests\n",
			rep.Sessions, rep.RequestsPerSession, rep.Addr, rep.Model, rep.FailedSessions, rep.FailedRequests)
	}
	if rep.Timeouts > 0 || rep.Retries > 0 || rep.ChaosSeed != 0 {
		fmt.Printf("  robustness: %d deadline expiries, %d retries (chaos seed %d)\n",
			rep.Timeouts, rep.Retries, rep.ChaosSeed)
	}
	fmt.Printf("  latency ms: p50=%.1f p90=%.1f p99=%.1f max=%.1f; throughput %.1f req/s\n",
		rep.Latency.P50, rep.Latency.P90, rep.Latency.P99, rep.Latency.Max, rep.ThroughputRPS)
	if rep.ServerLatency != nil {
		fmt.Printf("  server histogram ms (%d requests): p50=%.2f p90=%.2f p99=%.2f\n",
			reqHist.Count, rep.ServerLatency.P50, rep.ServerLatency.P90, rep.ServerLatency.P99)
	}
	if stats != nil {
		fmt.Printf("  cache: %d hits, %d misses (%d joined in flight); solver: %d solves, %d skeleton hits\n",
			stats.Cache.Hits, stats.Cache.Misses, stats.Cache.Joined, stats.Solver.Solves, stats.Solver.SkeletonHits)
		fmt.Printf("  compiled: %d hits, %d bytes shipped; %d/%d local compiled runs passed\n",
			stats.Cache.CompiledHits, stats.Cache.CompiledBytes, rep.LocalPass, rep.LocalRuns)
	}
	for _, pr := range peerReports {
		line := fmt.Sprintf("  peer %s: %d requests, p50=%.1fms p99=%.1fms", pr.Addr, pr.Requests, pr.Latency.P50, pr.Latency.P99)
		if pr.Stats != nil && pr.Stats.Cluster != nil {
			c := pr.Stats.Cluster
			line += fmt.Sprintf("; forwarded_hits=%d forwards=%d serves=%d fallbacks=%d", c.PeerHits, c.Forwards, c.PeerServes, c.OwnerLocalFallbacks)
		} else if pr.Stats == nil {
			line += " (unreachable)"
		}
		fmt.Println(line)
	}

	if *jsonOut != "" {
		data, err := json.MarshalIndent(&rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("report written to %s\n", *jsonOut)
	}

	switch {
	case (rep.FailedSessions > 0 || rep.FailedRequests > 0) && !*tolerate:
		fatal(fmt.Errorf("%d sessions / %d requests failed", rep.FailedSessions, rep.FailedRequests))
	case stats == nil:
		fatal(fmt.Errorf("could not fetch service stats"))
	case sumHits < *minHits:
		fatal(fmt.Errorf("cache hits %d below the -min-cache-hits floor %d", sumHits, *minHits))
	case sumCompiled < *minComp:
		fatal(fmt.Errorf("compiled hits %d below the -min-compiled-hits floor %d", sumCompiled, *minComp))
	case forwardedHits < *minFwd:
		fatal(fmt.Errorf("forwarded hits %d below the -min-forwarded-hits floor %d", forwardedHits, *minFwd))
	case *maxP99MS > 0 && rep.Latency.P99 > *maxP99MS:
		fatal(fmt.Errorf("p99 latency %.1fms above the -max-p99-ms SLO %.1fms", rep.Latency.P99, *maxP99MS))
	case *soakDur > 0 && sumPanics > 0 && !*tolerate:
		fatal(fmt.Errorf("soak run recovered %d panics daemon-side; a soak must be panic-free", sumPanics))
	}
}

// localConsult exercises the shipped compiled strategy end to end: fetch,
// decode against our copy of the model, cross-check the advertised
// checksum, and execute one local test run through the decoded tables. The
// run must pass — the purpose was already won repeatedly via the daemon's
// run op, and the compiled consultant is decision-equivalent.
func localConsult(cli *service.Client, sys, impl *model.System, plant []int, purpose, mode string,
	localRuns, localPass, compiledBytes *atomic.Int64) error {
	si, err := cli.Strategy(sys.Name, purpose, mode)
	if err != nil {
		return err
	}
	if si.Bytes != len(si.Encoded) {
		return fmt.Errorf("advertised %d bytes, got %d", si.Bytes, len(si.Encoded))
	}
	cs, err := game.Decode(sys, si.Encoded)
	if err != nil {
		return fmt.Errorf("decode: %v", err)
	}
	if sum := fmt.Sprintf("%016x", cs.Checksum()); sum != si.Checksum {
		return fmt.Errorf("checksum mismatch: advertised %s, decoded %s", si.Checksum, sum)
	}
	compiledBytes.Add(int64(len(si.Encoded)))
	res := texec.Run(cs, tiots.NewDetIUT(impl, tiots.Scale, nil), texec.Options{PlantProcs: plant})
	localRuns.Add(1)
	if res.Verdict != texec.Pass {
		return fmt.Errorf("local compiled run: %s (%s)", res.Verdict, res.Reason)
	}
	localPass.Add(1)
	return nil
}

type verdicts struct {
	Pass  int64 `json:"pass"`
	Fail  int64 `json:"fail"`
	Incon int64 `json:"incon"`
}

type latencies struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// peerReport is one fleet member's slice of the load (fleet mode only).
type peerReport struct {
	Addr          string         `json:"addr"`
	Requests      int            `json:"requests"`
	Latency       latencies      `json:"latency_ms"`
	ForwardedHits int64          `json:"forwarded_hits"`
	Stats         *service.Stats `json:"service_stats,omitempty"`
}

type report struct {
	Addr               string         `json:"addr"`
	Model              string         `json:"model"`
	Purpose            string         `json:"purpose"`
	IUT                string         `json:"iut"`
	Sessions           int            `json:"sessions"`
	RequestsPerSession int            `json:"requests_per_session"`
	Repeats            int            `json:"repeats"`
	TotalRequests      int            `json:"total_requests"`
	FailedSessions     int64          `json:"failed_sessions"`
	FailedRequests     int64          `json:"failed_requests"`
	DialRetries        int64          `json:"dial_retries"`
	Timeouts           int64          `json:"timeouts"`
	Retries            int64          `json:"retries"`
	ChaosSeed          int64          `json:"chaos_seed,omitempty"`
	Verdicts           verdicts       `json:"verdicts"`
	LocalRuns          int64          `json:"local_compiled_runs"`
	LocalPass          int64          `json:"local_compiled_pass"`
	CompiledBytes      int64          `json:"local_compiled_bytes"`
	SoakSeconds        float64        `json:"soak_seconds,omitempty"`
	Latency            latencies      `json:"latency_ms"`
	ServerLatency      *latencies     `json:"server_latency_ms,omitempty"`
	ThroughputRPS      float64        `json:"throughput_rps"`
	WallMS             int64          `json:"wall_ms"`
	Stats              *service.Stats `json:"service_stats,omitempty"`
	Peers              []peerReport   `json:"peers,omitempty"`
	ForwardedHits      int64          `json:"forwarded_hits,omitempty"`
}

// percentile returns the q-th percentile of the sorted slice in
// milliseconds (nearest-rank).
func percentile(sorted []time.Duration, q int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := (q*len(sorted) + 99) / 100
	if idx < 1 {
		idx = 1
	}
	if idx > len(sorted) {
		idx = len(sorted)
	}
	return float64(sorted[idx-1].Microseconds()) / 1000
}

// runWithRetry executes one run request, retrying transient failures with
// capped exponential backoff (25ms doubling to 400ms). An expired deadline
// (service.ErrDeadline) leaves the session usable, so the retry reuses it;
// any other failure means the session stream is unreliable — the retry
// redials a fresh session through dial. The returned client is whichever
// session the caller should keep using.
func runWithRetry(cli *service.Client, req service.Request, iut tiots.IUT,
	dial func() (*service.Client, error), maxRetries int,
	timeouts, retried *atomic.Int64) (*service.Client, *service.RunInfo, error) {
	backoff := 25 * time.Millisecond
	for attempt := 0; ; attempt++ {
		run, err := cli.Run(req, iut)
		if err == nil {
			return cli, run, nil
		}
		if errors.Is(err, service.ErrDeadline) {
			timeouts.Add(1)
		} else {
			cli.Close()
			fresh, derr := dial()
			if derr != nil {
				return cli, nil, fmt.Errorf("%v (redial: %v)", err, derr)
			}
			cli = fresh
		}
		if attempt >= maxRetries {
			return cli, nil, err
		}
		retried.Add(1)
		time.Sleep(backoff)
		if backoff *= 2; backoff > 400*time.Millisecond {
			backoff = 400 * time.Millisecond
		}
	}
}

// deriveSeed mixes an index into the base seed (splitmix64 finalizer), so
// every chaos session draws an uncorrelated fault schedule.
func deriveSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// fleetDial dials the next fleet member in round-robin order, retrying
// across the rotation until the window closes. A member that is down,
// draining or busy costs one attempt and the retry lands on the next
// member — this is what makes a SIGTERM'd daemon mid-load invisible to
// the request stream. Returns the address actually connected to.
func fleetDial(targets []string, rr *atomic.Int64, window time.Duration, wrap func(net.Conn) net.Conn, retries *atomic.Int64) (*service.Client, string, error) {
	deadline := time.Now().Add(window)
	for {
		target := targets[int(rr.Add(1)-1)%len(targets)]
		cli, err := service.DialWith(target, wrap)
		if err == nil {
			return cli, target, nil
		}
		if time.Now().After(deadline) {
			return nil, "", err
		}
		retries.Add(1)
		time.Sleep(50 * time.Millisecond)
	}
}

// dialRetry dials until the window closes, retrying connection refusals
// (daemon starting) and busy rejections (backpressure) alike. wrap, when
// non-nil, decorates the raw connection (fault injection).
func dialRetry(addr string, window time.Duration, wrap func(net.Conn) net.Conn, retries *atomic.Int64) (*service.Client, error) {
	deadline := time.Now().Add(window)
	for {
		cli, err := service.DialWith(addr, wrap)
		if err == nil {
			return cli, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		retries.Add(1)
		time.Sleep(50 * time.Millisecond)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tigaload:", err)
	os.Exit(1)
}
