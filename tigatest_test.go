package tigatest

import (
	"strings"
	"testing"

	"tigatest/internal/models"
)

func buildDoorbell() (*System, []int) {
	sys := NewSystem("doorbell")
	w := sys.AddClock("w")
	press := sys.AddChannel("press", Controllable)
	ring := sys.AddChannel("ring", Uncontrollable)
	bell := sys.AddProcess("Bell")
	idle := bell.AddLocation(Location{Name: "Idle"})
	armed := bell.AddLocation(Location{Name: "Armed", Invariant: []ClockConstraint{LE(w, 3)}})
	rung := bell.AddLocation(Location{Name: "Rung"})
	sys.AddEdge(bell, Edge{Src: idle, Dst: armed, Dir: Receive, Chan: press, Resets: []ClockReset{{Clock: w}}})
	sys.AddEdge(bell, Edge{Src: armed, Dst: rung, Dir: Emit, Chan: ring,
		Guard: Guard{Clocks: []ClockConstraint{GE(w, 1)}}})
	user := sys.AddProcess("User")
	u := user.AddLocation(Location{Name: "U"})
	sys.AddEdge(user, Edge{Src: u, Dst: u, Dir: Emit, Chan: press})
	sys.AddEdge(user, Edge{Src: u, Dst: u, Dir: Receive, Chan: ring})
	return sys, []int{0}
}

func TestFacadeEndToEnd(t *testing.T) {
	sys, plant := buildDoorbell()
	res, err := Synthesize(sys, "control: A<> Bell.Rung", nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Winnable || res.Strategy == nil {
		t.Fatal("doorbell must be winnable with a strategy")
	}
	verdict := Test(res.Strategy, SimulatedIUT(sys, plant, nil), plant)
	if verdict.Verdict != Pass {
		t.Fatalf("conformant doorbell must pass: %s", verdict)
	}
}

func TestFacadeParseError(t *testing.T) {
	sys, _ := buildDoorbell()
	if _, err := Synthesize(sys, "definitely not a formula", nil); err == nil {
		t.Fatal("bad formula must error")
	}
	if _, err := ParseFormula(sys, "control: A<> Bell.Nowhere", nil); err == nil {
		t.Fatal("unknown location must error")
	}
}

func TestFacadeMutantsKillable(t *testing.T) {
	sys, plant := buildDoorbell()
	res, err := Synthesize(sys, "control: A<> Bell.Rung", nil)
	if err != nil {
		t.Fatal(err)
	}
	muts := Mutants(sys, plant, 0)
	if len(muts) == 0 {
		t.Fatal("expected mutants")
	}
	killed := 0
	for _, m := range muts {
		v := Test(res.Strategy, MutantIUT(m, plant, m.Policy), plant)
		if v.Verdict == Fail {
			killed++
		}
	}
	if killed == 0 {
		t.Fatal("some mutant must be killed")
	}
}

func TestFacadeMonitorStandsAlone(t *testing.T) {
	sys, plant := buildDoorbell()
	m, err := NewMonitor(sys, plant)
	if err != nil {
		t.Fatal(err)
	}
	press, _ := sys.ChannelByName("press")
	ring, _ := sys.ChannelByName("ring")
	if err := m.Input(press); err != nil {
		t.Fatal(err)
	}
	if err := m.Delay(Scale); err != nil {
		t.Fatal(err)
	}
	if err := m.Output(ring); err != nil {
		t.Fatal(err)
	}
	// Second spontaneous ring violates.
	if err := m.Output(ring); err == nil {
		t.Fatal("second ring must violate")
	}
}

func TestFacadeCampaign(t *testing.T) {
	sys, plant := buildDoorbell()
	res, _ := Synthesize(sys, "control: A<> Bell.Rung", nil)
	cr := Campaign("doorbell", res.Strategy, SimulatedIUT(sys, plant, nil), 3, TestOptions{PlantProcs: plant})
	if cr.Pass != 3 || cr.Killed() {
		t.Fatalf("campaign: %+v", cr)
	}
}

func TestFacadeRemote(t *testing.T) {
	sys, plant := buildDoorbell()
	res, _ := Synthesize(sys, "control: A<> Bell.Rung", nil)
	srv, err := ServeIUT("127.0.0.1:0", SimulatedIUT(sys, plant, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialIUT(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if v := Test(res.Strategy, cli, plant); v.Verdict != Pass {
		t.Fatalf("remote doorbell must pass: %s", v)
	}
}

func TestDescribe(t *testing.T) {
	sys, _ := buildDoorbell()
	res, _ := Synthesize(sys, "control: A<> Bell.Rung", nil)
	d := Describe(res)
	if !strings.Contains(d, "winnable") || !strings.Contains(d, "Bell.Rung") {
		t.Fatalf("describe = %q", d)
	}
	if Describe(nil) != "<nil>" {
		t.Fatal("nil describe")
	}
}

func TestFacadeSmartLightShortcut(t *testing.T) {
	sys := models.SmartLight()
	res, err := Synthesize(sys, models.SmartLightGoal, nil)
	if err != nil || !res.Winnable {
		t.Fatalf("smartlight through the facade: %v", err)
	}
}
