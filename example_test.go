package tigatest_test

import (
	"fmt"

	"tigatest"
	"tigatest/internal/models"
)

// Example runs the paper's whole pipeline on the Smart Light running
// example: synthesize a winning strategy for the Fig. 5 test purpose and
// execute it against a conformant simulated implementation.
func Example() {
	sys := models.SmartLight()
	plant := models.SmartLightPlant(sys)

	res, err := tigatest.Synthesize(sys, models.SmartLightGoal, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("winnable:", res.Winnable)

	iut := tigatest.SimulatedIUT(sys, plant, nil)
	verdict := tigatest.Test(res.Strategy, iut, plant)
	fmt.Println("verdict:", verdict.Verdict)

	// Output:
	// winnable: true
	// verdict: pass
}

// ExampleSynthesize shows a not-winnable purpose: the light never brightens
// without being touched, and the tester controls all touches — so keeping
// it dark forever is in the tester's power, but forcing brightness without
// the forcing chain is not expressible... here we ask for Bright while the
// user could not have re-touched (z < 1), which the plant may refuse.
func ExampleSynthesize() {
	sys := models.SmartLight()
	res, err := tigatest.Synthesize(sys, "control: A<> IUT.Bright and z < 1", nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("adversarially winnable:", res.Winnable)

	coop, err := tigatest.Synthesize(sys, "control: A<> IUT.Bright and z < 1", nil,
		tigatest.SolveOptions{TreatAllControllable: true})
	if err != nil {
		panic(err)
	}
	fmt.Println("cooperatively winnable:", coop.Winnable)

	// Output:
	// adversarially winnable: false
	// cooperatively winnable: true
}
