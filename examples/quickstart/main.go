// Quickstart: model a two-location plant, synthesize a winning strategy
// for a reachability test purpose, and run a conformance test against a
// simulated implementation — the whole pipeline of the paper in ~60 lines.
package main

import (
	"fmt"
	"log"

	"tigatest"
)

func main() {
	// 1. Model. A doorbell: pressing the button arms it; it must ring
	//    within 1..3 time units (the plant chooses when — an
	//    uncontrollable output with timing uncertainty).
	sys := tigatest.NewSystem("doorbell")
	w := sys.AddClock("w")
	press := sys.AddChannel("press", tigatest.Controllable)
	ring := sys.AddChannel("ring", tigatest.Uncontrollable)

	bell := sys.AddProcess("Bell")
	idle := bell.AddLocation(tigatest.Location{Name: "Idle"})
	armed := bell.AddLocation(tigatest.Location{
		Name:      "Armed",
		Invariant: []tigatest.ClockConstraint{tigatest.LE(w, 3)}, // must ring by 3
	})
	rung := bell.AddLocation(tigatest.Location{Name: "Rung"})
	sys.AddEdge(bell, tigatest.Edge{
		Src: idle, Dst: armed, Dir: tigatest.Receive, Chan: press,
		Resets: []tigatest.ClockReset{{Clock: w}},
	})
	sys.AddEdge(bell, tigatest.Edge{
		Src: armed, Dst: rung, Dir: tigatest.Emit, Chan: ring,
		Guard: tigatest.Guard{Clocks: []tigatest.ClockConstraint{tigatest.GE(w, 1)}},
	})

	// The user (the tester's environment half): can press and hears rings.
	user := sys.AddProcess("User")
	u := user.AddLocation(tigatest.Location{Name: "U"})
	sys.AddEdge(user, tigatest.Edge{Src: u, Dst: u, Dir: tigatest.Emit, Chan: press})
	sys.AddEdge(user, tigatest.Edge{Src: u, Dst: u, Dir: tigatest.Receive, Chan: ring})

	// 2. Test purpose + strategy synthesis: can the tester force a ring?
	res, err := tigatest.Synthesize(sys, "control: A<> Bell.Rung", nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tigatest.Describe(res))
	if !res.Winnable {
		log.Fatal("unexpected: the bell can be forced to ring")
	}

	// 3. Conformance testing (Algorithm 3.1) against a faithful simulated
	//    implementation of the plant.
	plant := []int{0} // the Bell process
	iut := tigatest.SimulatedIUT(sys, plant, nil)
	verdict := tigatest.Test(res.Strategy, iut, plant)
	fmt.Println("conformant implementation:", verdict)

	// 4. The same test against a broken implementation that rings late.
	mutants := tigatest.Mutants(sys, plant, 0)
	for _, m := range mutants {
		if m.Operator != "widen-invariant" {
			continue
		}
		bad := tigatest.MutantIUT(m, plant, m.Policy)
		verdict := tigatest.Test(res.Strategy, bad, plant)
		fmt.Printf("mutant (%s): %s\n", m.Description, verdict)
		break
	}
}
