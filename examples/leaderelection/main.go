// Leaderelection reproduces the paper's case study (§4): the Leader
// Election Protocol with its three test purposes TP1-TP3, a miniature of
// Table 1, and an actual strategy-guided test run for TP1 against a
// simulated protocol node.
package main

import (
	"fmt"
	"log"
	"time"

	"tigatest"
	"tigatest/internal/models"
)

func main() {
	// --- the three test purposes at n=3 ---------------------------------
	n := 3
	sys := models.LEP(models.LEPOptions{Nodes: n})
	ranges := models.LEPEnv(sys, n).Ranges
	plant := models.LEPPlant(sys)

	fmt.Printf("Leader Election Protocol, n=%d (buffer size %d, addresses 0..%d)\n\n", n, n, n-1)
	purposes := []struct {
		name, src string
	}{
		{"TP1", models.LEPTP1},
		{"TP2", models.LEPTP2},
		{"TP3", models.LEPTP3},
	}
	var tp1 *tigatest.SolveResult
	for _, tp := range purposes {
		res, err := tigatest.Synthesize(sys, tp.src, ranges,
			tigatest.SolveOptions{EarlyTermination: true, TimeBudget: time.Minute})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: %s\n", tp.name, tigatest.Describe(res))
		if tp.name == "TP1" {
			tp1 = res
		}
	}

	// --- a mini Table 1 over n=3..4 --------------------------------------
	fmt.Println("\nmini Table 1 (time to synthesize, this machine; run cmd/lep for the full grid):")
	fmt.Printf("%-5s %10s %10s\n", "", "n=3", "n=4")
	for _, tp := range purposes {
		fmt.Printf("%-5s", tp.name)
		for nn := 3; nn <= 4; nn++ {
			s := models.LEP(models.LEPOptions{Nodes: nn})
			r := models.LEPEnv(s, nn).Ranges
			t0 := time.Now()
			if _, err := tigatest.Synthesize(s, tp.src, r,
				tigatest.SolveOptions{EarlyTermination: true, TimeBudget: time.Minute}); err != nil {
				fmt.Printf("%10s", "/")
				continue
			}
			fmt.Printf("%9.3fs", time.Since(t0).Seconds())
		}
		fmt.Println()
	}

	// --- test a simulated node against TP1 -------------------------------
	fmt.Println("\nTP1 test run against a simulated protocol node:")
	iut := tigatest.SimulatedIUT(sys, plant, nil)
	verdict := tigatest.Test(tp1.Strategy, iut, plant)
	fmt.Println("  conformant node:", verdict)

	// A node that forwards too late (its forward window widened).
	for _, m := range tigatest.Mutants(sys, plant, 0) {
		if m.Operator != "widen-invariant" {
			continue
		}
		bad := tigatest.MutantIUT(m, plant, m.Policy)
		v := tigatest.Test(tp1.Strategy, bad, plant)
		fmt.Printf("  %s: %s\n", m.Description, v.Verdict)
	}
}
