// Remotetest demonstrates true black-box testing across a process
// boundary: the implementation under test is served on a TCP socket (here
// in-process for a self-contained demo, but the server could be any
// machine wrapping any system that speaks the adapter protocol), and
// Algorithm 3.1 drives it remotely under virtual time.
package main

import (
	"fmt"
	"log"

	"tigatest"
	"tigatest/internal/models"
)

func main() {
	sys := models.SmartLight()
	plant := models.SmartLightPlant(sys)

	// Synthesize the test case (winning strategy).
	res, err := tigatest.Synthesize(sys, models.SmartLightGoal, nil)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Winnable {
		log.Fatal("not winnable")
	}

	// Host a conformant implementation on a loopback socket.
	srv, err := tigatest.ServeIUT("127.0.0.1:0", tigatest.SimulatedIUT(sys, plant, nil))
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Println("implementation served on", srv.Addr())

	// Connect the tester and run the conformance test remotely.
	cli, err := tigatest.DialIUT(srv.Addr())
	if err != nil {
		log.Fatal(err)
	}
	defer cli.Close()

	verdict := tigatest.Test(res.Strategy, cli, plant)
	fmt.Println("remote test verdict:", verdict)
	if cli.Err() != nil {
		log.Fatal("transport:", cli.Err())
	}

	// Now a defective implementation behind the same wire.
	for _, m := range tigatest.Mutants(sys, plant, 0) {
		if m.Operator != "drop-edge" {
			continue
		}
		srv2, err := tigatest.ServeIUT("127.0.0.1:0", tigatest.MutantIUT(m, plant, m.Policy))
		if err != nil {
			log.Fatal(err)
		}
		cli2, err := tigatest.DialIUT(srv2.Addr())
		if err != nil {
			log.Fatal(err)
		}
		v := tigatest.Test(res.Strategy, cli2, plant)
		if v.Verdict != tigatest.Pass {
			fmt.Printf("defective implementation (%s): %s\n", m.Description, v.Verdict)
			cli2.Close()
			srv2.Close()
			break
		}
		cli2.Close()
		srv2.Close()
	}
}
