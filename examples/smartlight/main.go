// Smartlight walks through the paper's running example end to end:
// the Fig. 2 light TIOGA composed with the Fig. 3 user TA, the test
// purpose `control: A<> IUT.Bright`, the synthesized winning strategy
// (the paper's Fig. 5), and conformance runs against implementations that
// resolve the light's nondeterminism differently — including one that
// always answers `dim`, which the strategy out-plays by re-touching
// quickly and forcing `bright`.
package main

import (
	"fmt"
	"log"
	"os"

	"tigatest"
	"tigatest/internal/models"
)

func main() {
	sys := models.SmartLight()
	plant := models.SmartLightPlant(sys)

	// --- Fig. 5: the winning strategy -----------------------------------
	res, err := tigatest.Synthesize(sys, models.SmartLightGoal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tigatest.Describe(res))
	if !res.Winnable {
		log.Fatal("the running example must be winnable")
	}
	fmt.Println()
	res.Strategy.Print(os.Stdout)

	// --- test execution against different conformant lights -------------
	fmt.Println("\n--- conformance runs ---")

	// A light that answers as fast as possible.
	eager := tigatest.SimulatedIUT(sys, plant, nil)
	fmt.Println("eager light:     ", tigatest.Test(res.Strategy, eager, plant))

	// A light that always prefers dim over bright (it may: the outputs are
	// its choice). The strategy still forces Bright via the quick re-touch.
	dimCh, _ := sys.ChannelByName("dim")
	stubborn := &tigatest.DetPolicy{Priority: map[int]int{}}
	for _, p := range sys.Procs {
		for _, e := range p.Edges {
			if e.Dir == tigatest.Emit && e.Chan == dimCh {
				stubborn.Priority[e.ID] = -1
			}
		}
	}
	dimLover := tigatest.SimulatedIUT(sys, plant, stubborn)
	fmt.Println("dim-loving light:", tigatest.Test(res.Strategy, dimLover, plant))

	// A light that waits as long as allowed before answering.
	lazy := &tigatest.DetPolicy{ByEdge: map[int]tigatest.OutputDecision{}}
	for _, p := range sys.Procs {
		for _, e := range p.Edges {
			if e.Dir == tigatest.Emit {
				lazy.ByEdge[e.ID] = tigatest.OutputDecision{Enabled: true, Offset: 2*tigatest.Scale - 1}
			}
		}
	}
	procrastinator := tigatest.SimulatedIUT(sys, plant, lazy)
	fmt.Println("lazy light:      ", tigatest.Test(res.Strategy, procrastinator, plant))

	// --- and one defective light ----------------------------------------
	fmt.Println("\n--- a defective light ---")
	for _, m := range tigatest.Mutants(sys, plant, 0) {
		if m.Operator != "swap-output" {
			continue
		}
		bad := tigatest.MutantIUT(m, plant, m.Policy)
		v := tigatest.Test(res.Strategy, bad, plant)
		if v.Verdict == tigatest.Fail {
			fmt.Printf("%s\n  -> %s\n", m.Description, v)
			break
		}
	}
}
