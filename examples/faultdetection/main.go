// Faultdetection runs the mutation study of the paper's future-work item 3
// ("evaluating strategy-based test effectiveness in terms of fault
// detecting capability"): generate mutants of the Smart Light, test each
// with the winning strategy, and report kill rates per fault class — also
// showing how a *cooperative* strategy (future-work item 4) behaves when
// the purpose cannot be forced.
package main

import (
	"fmt"
	"log"

	"tigatest"
	"tigatest/internal/models"
)

func main() {
	sys := models.SmartLight()
	plant := models.SmartLightPlant(sys)

	res, err := tigatest.Synthesize(sys, models.SmartLightGoal, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(tigatest.Describe(res))

	muts := tigatest.Mutants(sys, plant, 0)
	fmt.Printf("\nmutation campaign: %d mutants of the light\n\n", len(muts))
	type tally struct{ killed, passed, incon int }
	byOp := map[string]*tally{}
	for _, m := range muts {
		t := byOp[m.Operator]
		if t == nil {
			t = &tally{}
			byOp[m.Operator] = t
		}
		iut := tigatest.MutantIUT(m, plant, m.Policy)
		switch tigatest.Test(res.Strategy, iut, plant).Verdict {
		case tigatest.Fail:
			t.killed++
		case tigatest.Pass:
			t.passed++
		default:
			t.incon++
		}
	}
	total, killed := 0, 0
	for op, t := range byOp {
		n := t.killed + t.passed + t.incon
		fmt.Printf("  %-18s %3d mutants, %3d killed, %3d passed, %3d inconclusive\n",
			op, n, t.killed, t.passed, t.incon)
		total += n
		killed += t.killed
	}
	fmt.Printf("\noverall kill rate: %d/%d (%.0f%%)\n", killed, total, 100*float64(killed)/float64(total))
	fmt.Println("surviving mutants sit outside the tested behaviour: targeted testing")
	fmt.Println("is (only) partially complete w.r.t. its purpose — Theorem 11.")

	// --- cooperative testing (future work 4) -----------------------------
	// "Bright while the user could not have touched a second time yet"
	// (z < 1) can only happen if the light volunteers bright! from L5 —
	// the tester cannot force it (the light may dim instead), but a
	// cooperative plant grants it. When no winning strategy exists the
	// paper proposes this small "retreat": synthesize a cooperative
	// strategy and report inconclusive instead of giving up.
	fmt.Println("\ncooperative testing (future work 4):")
	coopGoal := "control: A<> IUT.Bright and z < 1"
	adversarial, err := tigatest.Synthesize(sys, coopGoal, nil)
	if err != nil {
		log.Fatal(err)
	}
	cooperative, err := tigatest.Synthesize(sys, coopGoal, nil,
		tigatest.SolveOptions{TreatAllControllable: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %s\n    adversarially: winnable=%v\n    cooperatively: winnable=%v\n",
		coopGoal, adversarial.Winnable, cooperative.Winnable)
	if !adversarial.Winnable && cooperative.Winnable {
		// Execute the cooperative strategy. A bright-eager light grants the
		// hope (pass); a dim-loving light does not — and the verdict is
		// inconclusive, NOT fail: the implementation did nothing wrong.
		brightCh, _ := sys.ChannelByName("bright")
		helpful := &tigatest.DetPolicy{Priority: map[int]int{}}
		for _, p := range sys.Procs {
			for _, e := range p.Edges {
				if e.Dir == tigatest.Emit && e.Chan == brightCh {
					helpful.Priority[e.ID] = -1
				}
			}
		}
		v := tigatest.Test(cooperative.Strategy, tigatest.SimulatedIUT(sys, plant, helpful), plant)
		fmt.Printf("  cooperative run vs bright-eager light: %s\n", v)

		// A light that always answers 1.5 units late can never produce
		// bright with z < 1, so the hope is never granted.
		lazy := &tigatest.DetPolicy{ByEdge: map[int]tigatest.OutputDecision{}}
		for _, p := range sys.Procs {
			for _, e := range p.Edges {
				if e.Dir == tigatest.Emit {
					lazy.ByEdge[e.ID] = tigatest.OutputDecision{Enabled: true, Offset: 3 * tigatest.Scale / 2}
				}
			}
		}
		v2 := tigatest.Test(cooperative.Strategy, tigatest.SimulatedIUT(sys, plant, lazy), plant)
		fmt.Printf("  cooperative run vs lazy light:         %s\n", v2)
	}
}
