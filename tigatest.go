// Package tigatest is a game-theoretic testing toolkit for real-time
// systems, reproducing "A Game-Theoretic Approach to Real-Time System
// Testing" (David, Larsen, Li, Nielsen — DATE 2008).
//
// The pipeline mirrors the paper's Fig. 4:
//
//  1. Model the system under test as a Timed I/O Game Automaton network
//     (NewSystem + the model builder API, or models.SmartLight / models.LEP)
//     where inputs are controllable and outputs uncontrollable.
//  2. State a test purpose as an annotated TCTL formula,
//     e.g. "control: A<> IUT.Bright".
//  3. Synthesize a winning strategy with Synthesize (an on-the-fly timed
//     game solver in the spirit of UPPAAL-TIGA).
//  4. Execute the strategy against a black-box implementation with Test
//     (Algorithm 3.1): inputs are offered, outputs and their timing are
//     checked against the spec via the tioco relation, and the run ends in
//     pass, fail or inconclusive.
//
// Quick start:
//
//	sys := models.SmartLight()
//	res, err := tigatest.Synthesize(sys, "control: A<> IUT.Bright", nil)
//	iut := tigatest.SimulatedIUT(sys, models.SmartLightPlant(sys), nil)
//	verdict := tigatest.Test(res.Strategy, iut, models.SmartLightPlant(sys))
package tigatest

import (
	"fmt"

	"tigatest/internal/adapter"
	"tigatest/internal/game"
	"tigatest/internal/model"
	"tigatest/internal/mutate"
	"tigatest/internal/tctl"
	"tigatest/internal/texec"
	"tigatest/internal/tioco"
	"tigatest/internal/tiots"
)

// Core model types.
type (
	// System is a network of timed I/O game automata.
	System = model.System
	// Process is one automaton of the network.
	Process = model.Process
	// Location of a process.
	Location = model.Location
	// Edge is a transition of a process.
	Edge = model.Edge
	// Guard combines clock constraints with a data predicate.
	Guard = model.Guard
	// ClockConstraint is a bound on a clock or clock difference.
	ClockConstraint = model.ClockConstraint
	// ClockReset sets a clock on an edge.
	ClockReset = model.ClockReset
	// Kind partitions actions into controllable inputs and uncontrollable
	// outputs (Def. 3 of the paper).
	Kind = model.Kind
)

// Solver and strategy types.
type (
	// Formula is a parsed test purpose (control: A<> φ / control: A[] φ).
	Formula = tctl.Formula
	// Range is a named quantifier range for formulas.
	Range = tctl.Range
	// SolveOptions configure the game solver.
	SolveOptions = game.Options
	// SolveResult carries winnability, the strategy and solver statistics.
	SolveResult = game.Result
	// Strategy is a synthesized state-based winning strategy.
	Strategy = game.Strategy
)

// Test execution types.
type (
	// IUT is the tester-facing interface of an implementation under test.
	IUT = tiots.IUT
	// DetPolicy resolves spec nondeterminism into one deterministic
	// implementation (§2.5 test hypotheses).
	DetPolicy = tiots.DetPolicy
	// OutputDecision schedules one plant output.
	OutputDecision = tiots.OutputDecision
	// TestResult is the outcome of one Algorithm 3.1 run.
	TestResult = texec.Result
	// TestOptions configure test execution.
	TestOptions = texec.Options
	// Verdict is pass/fail/inconclusive.
	Verdict = texec.Verdict
	// Monitor tracks Out(s After σ) for online tioco checking.
	Monitor = tioco.Monitor
	// Mutant is a model with one planted fault.
	Mutant = mutate.Mutant
)

// Re-exported constants.
const (
	Controllable   = model.Controllable
	Uncontrollable = model.Uncontrollable
	Emit           = model.Emit
	Receive        = model.Receive
	NoSync         = model.NoSync
	Pass           = texec.Pass
	Fail           = texec.Fail
	Inconclusive   = texec.Inconclusive
	// Scale is the default tick resolution (ticks per model time unit).
	Scale = tiots.Scale
)

// Clock-constraint helpers for building guards and invariants.
var (
	// GE builds x >= k.
	GE = model.GE
	// GT builds x > k.
	GT = model.GT
	// LE builds x <= k.
	LE = model.LE
	// LT builds x < k.
	LT = model.LT
	// EQ builds x == k (two constraints).
	EQ = model.EQ
	// DiffLE builds xi - xj <= k.
	DiffLE = model.DiffLE
	// DiffLT builds xi - xj < k.
	DiffLT = model.DiffLT
)

// NewSystem creates an empty TIOGA network; build it with AddClock,
// AddChannel, AddProcess and AddEdge.
func NewSystem(name string) *System { return model.NewSystem(name) }

// ParseFormula parses an annotated TCTL test purpose against the system.
// ranges supplies named quantifier ranges (may be nil).
func ParseFormula(sys *System, formula string, ranges map[string]Range) (*Formula, error) {
	return tctl.Parse(&tctl.ParseEnv{Sys: sys, Ranges: ranges}, formula)
}

// Synthesize parses the test purpose and solves the timed game, returning
// winnability, statistics and — for winnable reachability objectives — a
// winning strategy. opts may be nil for defaults. Synthesis explores the
// zone graph on SolveOptions.Workers goroutines and propagates winning
// sets bottom-up over the SCC condensation on
// SolveOptions.PropagationWorkers goroutines (all cores by default;
// Workers: 1 forces the serial engine); the computed winning sets are
// semantically identical for every worker count.
func Synthesize(sys *System, formula string, ranges map[string]Range, opts ...SolveOptions) (*SolveResult, error) {
	f, err := ParseFormula(sys, formula, ranges)
	if err != nil {
		return nil, err
	}
	var o SolveOptions
	if len(opts) > 0 {
		o = opts[0]
	}
	return game.Solve(sys, f, o)
}

// Test executes the strategy against the implementation under Algorithm
// 3.1 and returns the verdict. plantProcs identifies the IUT processes of
// the specification model.
func Test(strat *Strategy, iut IUT, plantProcs []int) TestResult {
	return texec.Run(strat, iut, texec.Options{PlantProcs: plantProcs})
}

// TestWithOptions is Test with full control over the execution options.
func TestWithOptions(strat *Strategy, iut IUT, opts TestOptions) TestResult {
	return texec.Run(strat, iut, opts)
}

// Campaign runs the strategy n times and aggregates verdicts.
func Campaign(name string, strat *Strategy, iut IUT, n int, opts TestOptions) texec.CampaignResult {
	return texec.Campaign(name, strat, iut, n, opts)
}

// SimulatedIUT builds an in-process deterministic implementation from the
// plant part of a specification: a faithful implementation when policy is
// nil (outputs fire as soon as allowed), or any §2.5-conforming resolution
// via the policy. Use it with mutants to simulate faulty implementations.
func SimulatedIUT(spec *System, plantProcs []int, policy *DetPolicy) IUT {
	impl := model.ExtractPlant(spec, plantProcs, "TesterStub")
	return tiots.NewDetIUT(impl, tiots.Scale, policy)
}

// NewMonitor builds a standalone tioco monitor for the plant processes
// (the Out(s After σ) oracle of Algorithm 3.1), for users who drive their
// own test loop.
func NewMonitor(spec *System, plantProcs []int) (*Monitor, error) {
	return tioco.NewMonitor(spec, plantProcs, tiots.Scale)
}

// Mutants generates the standard mutation pool over the plant processes
// (at most maxPerOperator per operator; 0 = unlimited).
func Mutants(spec *System, plantProcs []int, maxPerOperator int) []*Mutant {
	return mutate.All(spec, plantProcs, maxPerOperator)
}

// ServeIUT exposes an implementation on a TCP address ("127.0.0.1:0" picks
// a free port) using the newline-JSON adapter protocol.
func ServeIUT(addr string, iut IUT) (*adapter.Server, error) {
	return adapter.Serve(addr, iut)
}

// DialIUT connects to a remotely served implementation; the returned
// client satisfies IUT and can be passed to Test.
func DialIUT(addr string) (*adapter.Client, error) {
	return adapter.Dial(addr)
}

// MutantIUT builds a simulated implementation from a mutant model.
func MutantIUT(m *Mutant, plantProcs []int, policy *DetPolicy) IUT {
	impl := model.ExtractPlant(m.Sys, plantProcs, "TesterStub")
	return tiots.NewDetIUT(impl, tiots.Scale, policy)
}

// Describe returns a short human-readable synopsis of a solve result.
func Describe(res *SolveResult) string {
	if res == nil {
		return "<nil>"
	}
	verdict := "NOT winnable"
	if res.Winnable {
		verdict = "winnable"
	}
	return fmt.Sprintf("%s: %s (%d symbolic states, %d updates, %v)",
		res.Formula, verdict, res.Stats.Nodes, res.Stats.Updates, res.Stats.Duration)
}
