module tigatest

go 1.24
